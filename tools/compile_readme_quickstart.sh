#!/usr/bin/env sh
# Extracts the first ```cpp block from README.md, wraps its statements
# in a main(), and compiles the result against src/ headers — so the
# quickstart snippet drifting from the real API fails CI instead of
# greeting new users with a compile error.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

awk '/^```cpp$/ { in_block = 1; next }
     /^```$/    { if (in_block) exit }
     in_block   { print }' "$repo/README.md" > "$work/snippet.cpp"
test -s "$work/snippet.cpp" || {
  echo "no \`\`\`cpp block found in README.md" >&2
  exit 1
}

{
  echo '#include <iostream>'
  grep '^#include' "$work/snippet.cpp"
  grep '^using ' "$work/snippet.cpp" || true
  echo 'int main() {'
  grep -v -e '^#include' -e '^using ' "$work/snippet.cpp"
  echo 'return 0; }'
} > "$work/quickstart_main.cpp"

"${CXX:-c++}" -std=c++20 -I "$repo/src" -c \
  "$work/quickstart_main.cpp" -o "$work/quickstart_main.o"
echo "README quickstart snippet compiles"
