#!/usr/bin/env python3
"""Diff two bench reports (BENCH_*.json / *.jsonl) on (bench, metric).

The regression workflow in docs/performance.md: join the baseline and
current reports on the (bench, metric) pair, compare medians, and flag
anything that moved more than the threshold (10% by default — micro
medians on an idle box are stable to a few percent).

    python3 tools/gm_bench_diff.py BENCH_PR5.json bench-report.json
    python3 tools/gm_bench_diff.py --threshold=0.25 old.json new.json

Accepts both formats read_report understands: a gm_bench_merge array
or raw JSONL (one record per line). Only median rows are compared —
a record counts as a median when its bench name carries the
google-benchmark `_median` aggregate suffix (or `_median` embedded
before the `/iterations:N` suffix), or when its metric name ends in
`_median` (the convention the checked-in `*_pre_prN_median` baseline
records use). Mean/stddev/cv rows are ignored. Median rows present in
only one of the two files are not compared, but they are no longer
silently dropped either: they get their own "unmatched" section after
the delta table, so a renamed bench (baseline orphaned) or a new bench
(no baseline yet) is visible in the report. The unmatched section is
informational and never affects the exit code, so a baseline file with
extra benches still diffs cleanly against a filtered CI run.

Exit code is 0 even when deltas are flagged: shared CI runners are too
noisy to gate on wall-clock thresholds (docs/performance.md), so this
is a report, not a gate. --fail-on-regression flips that for local
A/B use.
"""

import argparse
import json
import re
import sys

_MEDIAN_BENCH = re.compile(r"_median(/iterations:\d+)?$")


def load_records(path):
    """Returns the list of record dicts in `path` (array or JSONL)."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        return json.loads(text)
    records = []
    for line in text.splitlines():
        line = line.strip().rstrip(",")
        if not line or line in "[]":
            continue
        records.append(json.loads(line))
    return records


def median_rows(records):
    """Maps (bench, metric) -> value for every median row."""
    rows = {}
    for r in records:
        bench = r.get("bench", "")
        metric = r.get("metric", "")
        if not (_MEDIAN_BENCH.search(bench) or metric.endswith("_median")):
            continue
        rows[(bench, metric)] = float(r.get("value", 0.0))
    return rows


def print_unmatched(base_only, cur_only):
    """Lists median rows found in only one report (never a gate)."""
    if not base_only and not cur_only:
        return
    print(f"\nunmatched ({len(base_only) + len(cur_only)} median rows "
          "in only one report):")
    for bench, metric in base_only:
        print(f"  baseline only: {bench} {metric}")
    for bench, metric in cur_only:
        print(f"  current only:  {bench} {metric}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="join two bench reports on (bench, metric) and "
                    "flag median deltas beyond the threshold")
    parser.add_argument("baseline", help="older report (the reference)")
    parser.add_argument("current", help="newer report to compare")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative delta that gets flagged "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any metric slowed down beyond "
                             "the threshold (off by default: CI noise)")
    args = parser.parse_args(argv)

    base = median_rows(load_records(args.baseline))
    cur = median_rows(load_records(args.current))
    joined = sorted(set(base) & set(cur))
    base_only = sorted(set(base) - set(cur))
    cur_only = sorted(set(cur) - set(base))
    if not joined:
        print("no common (bench, metric) median rows; nothing to diff")
        print_unmatched(base_only, cur_only)
        return 0

    flagged = regressions = 0
    width = max(len(f"{b} {m}") for b, m in joined)
    for bench, metric in joined:
        old, new = base[(bench, metric)], cur[(bench, metric)]
        if old == 0.0:
            continue
        delta = (new - old) / old
        # Throughput counters are higher-is-better; everything else in
        # the reports is a duration.
        higher_is_better = "per_second" in metric or metric.endswith("_per_s")
        worse = delta < 0 if higher_is_better else delta > 0
        mark = ""
        if abs(delta) > args.threshold:
            flagged += 1
            mark = "  <-- slower" if worse else "  <-- faster"
            if worse:
                regressions += 1
        print(f"{bench + ' ' + metric:<{width}}  "
              f"{old:>14.3f} -> {new:>14.3f}  {delta:+8.1%}{mark}")

    print(f"\n{len(joined)} compared, {flagged} beyond "
          f"{args.threshold:.0%} ({regressions} slower)")
    print_unmatched(base_only, cur_only)
    return 1 if args.fail_on_regression and regressions else 0


if __name__ == "__main__":
    sys.exit(main())
