// gm_bench_merge — collate per-binary bench reports (JSONL files
// written via `--json=`) into one pretty-printed JSON array, e.g. the
// checked-in BENCH_PR3.json perf baseline.
//
//   gm_bench_merge --out=BENCH.json report1.jsonl report2.jsonl ...
//
// Inputs may be JSONL or previously merged arrays (so a baseline file
// can be re-merged with fresh records). Records keep input order;
// rerunning on the same inputs reproduces the same output.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "json_report.hpp"
#include "util/assert.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --out=FILE report.jsonl [report2.jsonl ...]\n"
               "Collates bench --json reports into one JSON array.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kOut[] = "--out=";
    if (std::strncmp(argv[i], kOut, sizeof(kOut) - 1) == 0)
      out_path.assign(argv[i] + sizeof(kOut) - 1);
    else if (argv[i][0] == '-')
      return usage(argv[0]);
    else
      inputs.emplace_back(argv[i]);
  }
  if (out_path.empty() || inputs.empty()) return usage(argv[0]);

  try {
    const auto records = gm::bench::merge_reports(inputs);
    gm::bench::write_merged_json(records, out_path);
    std::cout << "merged " << records.size() << " records from "
              << inputs.size() << " file(s) into " << out_path << "\n";
  } catch (const gm::RuntimeError& e) {
    std::cerr << "gm_bench_merge: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
