// gm_explain — answer "why was task X deferred at slot S" from a
// provenance trace (a JSONL trace produced with --provenance).
//
//   gm_explain <trace.jsonl> --task=ID [--slot=S]
//   gm_explain <trace.jsonl> --slot=S --deferred
//
// The first form narrates every decision the planner made about one
// task (optionally restricted to one slot): action, cause, chosen
// slot offset, the class it was aggregated into, its demux rank, and
// the marginal green-vs-brown cost of the assigning path. The second
// form lists every task deferred (or pushed beyond the horizon) at a
// slot — the "who is waiting and why" view.
//
// Exit codes: 0 decisions found and printed, 2 usage error, 3 the
// trace has no matching decision records (with a hint if the trace
// carries no provenance at all).
//
// Record schema: docs/observability.md §decision records.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/table.hpp"

namespace {

using gm::obs::FlatRecord;
using gm::obs::record_num;
using gm::obs::record_str;

/// Human sentence for one decision record.
std::string narrate(const FlatRecord& r) {
  const std::string action = record_str(r, "action", "?");
  const std::string reason = record_str(r, "reason", "?");
  std::string text;
  if (action == "run") {
    text = "ran immediately";
  } else if (action == "defer") {
    const auto off = record_num(r, "chosen_offset", -1.0);
    text = off >= 0 ? "deferred to slot offset +" +
                          std::to_string(static_cast<long long>(off))
                    : "deferred with no in-horizon slot";
  } else if (action == "beyond") {
    text = "deferred beyond the planning horizon";
  } else if (action == "drop") {
    text = "dropped";
  } else {
    text = action;
  }
  text += " (" + reason;
  if (record_str(r, "warm_solve") == "true") text += ", warm solve";
  text += ")";
  return text;
}

void print_costs(const FlatRecord& r, std::ostream& out) {
  const double green = record_num(r, "green_cost", -1.0);
  const double brown = record_num(r, "brown_cost", -1.0);
  if (green >= 0 && brown >= 0)
    out << "    marginal path cost: green " << green << " vs brown "
        << brown << " (green saves " << brown - green << ")\n";
  else if (brown >= 0)
    out << "    marginal path cost: brown " << brown << "\n";
  const double flow = record_num(r, "slot_green_flow", -1.0);
  if (flow >= 0)
    out << "    green units routed to the chosen slot: " << flow
        << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  long long task = -1;
  long long slot = -1;
  bool deferred_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gm_explain <trace.jsonl> --task=ID "
                   "[--slot=S]\n"
                   "       gm_explain <trace.jsonl> --slot=S "
                   "--deferred\n";
      return 0;
    }
    if (arg.rfind("--task=", 0) == 0) {
      task = std::stoll(arg.substr(std::strlen("--task=")));
      continue;
    }
    if (arg.rfind("--slot=", 0) == 0) {
      slot = std::stoll(arg.substr(std::strlen("--slot=")));
      continue;
    }
    if (arg == "--deferred") {
      deferred_only = true;
      continue;
    }
    if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (path.empty() || (task < 0 && slot < 0)) {
    std::cerr << "usage: gm_explain <trace.jsonl> --task=ID [--slot=S]\n"
                 "       gm_explain <trace.jsonl> --slot=S --deferred\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open trace file: " << path << '\n';
    return 1;
  }

  std::vector<FlatRecord> matches;
  std::uint64_t decision_records = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    FlatRecord r;
    try {
      r = gm::obs::parse_flat_json(line);
    } catch (const std::exception&) {
      continue;  // summarizer semantics: never die on a foreign line
    }
    if (record_str(r, "kind") != "decision") continue;
    ++decision_records;
    if (task >= 0 &&
        static_cast<long long>(record_num(r, "task", -1.0)) != task)
      continue;
    if (slot >= 0 &&
        static_cast<long long>(record_num(r, "slot", -1.0)) != slot)
      continue;
    if (deferred_only) {
      const std::string action = record_str(r, "action");
      if (action == "run") continue;
    }
    matches.push_back(std::move(r));
  }

  if (matches.empty()) {
    if (decision_records == 0) {
      std::cerr << "no decision records in " << path
                << " — re-run the simulation with --provenance (and "
                   "--trace) to capture them\n";
    } else if (task >= 0) {
      std::cerr << "no decisions for task " << task
                << (slot >= 0 ? " at slot " + std::to_string(slot) : "")
                << " among " << decision_records
                << " decision records\n";
    } else {
      std::cerr << "no " << (deferred_only ? "deferred " : "")
                << "decisions at slot " << slot << " among "
                << decision_records << " decision records\n";
    }
    return 3;
  }

  if (task >= 0) {
    std::cout << "task " << task << ": " << matches.size()
              << " decision(s)\n";
    for (const auto& r : matches) {
      std::cout << "  slot "
                << static_cast<long long>(record_num(r, "slot")) << " ["
                << record_str(r, "policy", "?") << "]: " << narrate(r)
                << '\n';
      const auto class_id = record_num(r, "class_id", -1.0);
      if (class_id >= 0)
        std::cout << "    aggregated into class node "
                  << static_cast<long long>(class_id) << " ("
                  << static_cast<long long>(record_num(r, "class_size"))
                  << " interchangeable tasks, demux rank "
                  << static_cast<long long>(
                         record_num(r, "demux_rank", -1.0))
                  << ")\n";
      print_costs(r, std::cout);
      std::cout << "    deadline slack: "
                << static_cast<long long>(
                       record_num(r, "deadline_slack"))
                << " slot(s)\n";
    }
    return 0;
  }

  // Slot view: one row per task decision at the slot.
  std::cout << "slot " << slot << ": " << matches.size()
            << (deferred_only ? " deferred/waiting" : "")
            << " decision(s)\n";
  gm::TextTable table({"task", "action", "reason", "offset", "class",
                       "slack", "green", "brown"});
  for (const auto& r : matches) {
    const auto cell = [&](const char* key) {
      const double v = record_num(r, key, -1.0);
      return v < 0 ? std::string("-")
                   : std::to_string(static_cast<long long>(v));
    };
    table.add_row({std::to_string(static_cast<long long>(
                       record_num(r, "task"))),
                   record_str(r, "action", "?"),
                   record_str(r, "reason", "?"), cell("chosen_offset"),
                   cell("class_id"), cell("deadline_slack"),
                   cell("green_cost"), cell("brown_cost")});
  }
  table.print(std::cout);
  return 0;
}
