// gm_golden — golden-output regression harness (docs/correctness.md).
//
//   gm_golden [--dir=PATH] [--scenarios=PATH] [--case=SUBSTR]
//             [--list] [--update]
//
// Runs a fixed corpus of canonical configurations (three policies ×
// battery presets × wind/MAID/carbon variants) plus one case per
// checked-in scenario pack config (configs/scenarios/*.conf, named
// scenario-<stem> — see docs/scenarios.md), renders each run to a
// normalized text form (config echo + run summary + per-slot ledger
// CSV at full round-trip precision) and diffs it against the
// checked-in file tests/golden/<case>.txt. Any drift — an energy
// value, a task count, a config key — fails the case with the first
// differing line. Because the slot CSV carries 17 significant digits,
// even a 1e-3 J/slot accounting leak (~1e-10 relative) shows up as a
// diff.
//
// Every case also runs the gm::audit conservation checks and the
// config round-trip fixed-point check, so the corpus cannot be
// regenerated into a self-consistent-but-wrong state without tripping
// the independent books.
//
//   --dir=PATH     corpus directory (default: tests/golden, resolved
//                  against the current working directory)
//   --case=SUBSTR  only cases whose name contains SUBSTR
//   --list         print case names and exit
//   --update       rewrite the corpus from the current build (use
//                  after an intentional behavior change; review the
//                  diff before committing)
//
// Exit codes: 0 all green, 2 usage error, 3 golden mismatch or
// missing file, 4 audit/round-trip failure.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "util/csv.hpp"

namespace {

struct GoldenCase {
  std::string name;
  /// key=value overrides applied on top of the canonical config.
  std::vector<std::pair<std::string, std::string>> overrides{};
  /// When non-empty, the case is a scenario pack config file loaded
  /// with config_from_file instead of the overrides above.
  std::string conf_path{};
};

/// The corpus. Two simulated days keep each case under a second while
/// still covering two full diurnal cycles plus the drain window; the
/// half-full initial SoC suppresses the cold-start artifact that would
/// otherwise dominate short runs. Names are file stems in --dir.
std::vector<GoldenCase> golden_cases() {
  const std::vector<std::pair<std::string, std::string>> common = {
      {"workload.days", "2"},
      {"battery.initial_soc", "0.5"},
  };
  const auto with = [&common](
      std::initializer_list<std::pair<std::string, std::string>> extra) {
    std::vector<std::pair<std::string, std::string>> all = common;
    all.insert(all.end(), extra.begin(), extra.end());
    return all;
  };
  return {
      {"asap-li40",
       with({{"policy.kind", "asap"}, {"battery.kwh", "40"}})},
      {"opportunistic-li40",
       with({{"policy.kind", "opportunistic"}, {"battery.kwh", "40"}})},
      {"greenmatch-li40",
       with({{"policy.kind", "greenmatch"}, {"battery.kwh", "40"}})},
      {"greenmatch-la40",
       with({{"policy.kind", "greenmatch"},
             {"battery.technology", "la"},
             {"battery.kwh", "40"}})},
      {"greenmatch-ideal20",
       with({{"policy.kind", "greenmatch"},
             {"battery.technology", "ideal"},
             {"battery.kwh", "20"}})},
      {"greenmatch-wind",
       with({{"policy.kind", "greenmatch"},
             {"wind.enabled", "true"},
             {"battery.kwh", "40"}})},
      {"greenmatch-maid",
       with({{"policy.kind", "greenmatch"},
             {"sim.maid", "true"},
             {"battery.kwh", "40"}})},
      {"greenmatch-carbon-event",
       with({{"policy.kind", "greenmatch"},
             {"policy.carbon_aware", "true"},
             {"grid.profile", "wind-heavy"},
             {"sim.fidelity", "event"},
             {"battery.kwh", "40"}})},
  };
}

gm::core::ExperimentConfig build_config(const GoldenCase& c) {
  if (!c.conf_path.empty())
    return gm::core::config_from_file(c.conf_path);
  gm::core::ExperimentConfig config =
      gm::core::ExperimentConfig::canonical();
  gm::KeyValueConfig kv;
  for (const auto& [key, value] : c.overrides) kv.set(key, value);
  gm::core::apply_config(config, kv);
  return config;
}

/// One case per *.conf in the scenario pack directory, name
/// scenario-<stem>, sorted for a stable corpus order. A missing
/// directory yields no cases (the built-in corpus still runs).
std::vector<GoldenCase> scenario_cases(const std::string& dir) {
  std::vector<GoldenCase> cases;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".conf") continue;
    GoldenCase c;
    c.name = "scenario-" + entry.path().stem().string();
    c.conf_path = entry.path().string();
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const GoldenCase& a, const GoldenCase& b) {
              return a.name < b.name;
            });
  return cases;
}

/// The normalized text form a case is diffed in. Everything printed is
/// deterministic: the config echo, the fixed-precision summary, and
/// the slot ledger at CsvWriter's full round-trip float precision.
std::string render(const GoldenCase& c,
                   const gm::core::ExperimentConfig& config,
                   const gm::core::RunArtifacts& artifacts) {
  std::ostringstream out;
  out << "# gm_golden case: " << c.name << "\n";
  out << "# config\n";
  for (const auto& [key, value] : gm::core::config_echo(config))
    out << key << " = " << value << "\n";
  out << "# summary\n";
  artifacts.result.print_summary(out);
  out << "# slots\n";
  gm::CsvWriter csv(out);
  csv.field("slot").field("start_s").field("demand_kwh")
      .field("green_supply_kwh").field("green_direct_kwh")
      .field("battery_in_kwh").field("battery_out_kwh")
      .field("brown_kwh").field("curtailed_kwh")
      .field("battery_soc_kwh").field("active_nodes");
  csv.end_row();
  const auto& slots = artifacts.ledger.slots();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto& s = slots[i];
    csv.field(s.slot)
        .field(s.start)
        .field(gm::j_to_kwh(s.demand_j))
        .field(gm::j_to_kwh(s.green_supply_j))
        .field(gm::j_to_kwh(s.green_direct_j))
        .field(gm::j_to_kwh(s.battery_charge_drawn_j))
        .field(gm::j_to_kwh(s.battery_discharged_j))
        .field(gm::j_to_kwh(s.brown_j))
        .field(gm::j_to_kwh(s.curtailed_j))
        .field(gm::j_to_kwh(s.battery_stored_end_j))
        .field(static_cast<std::int64_t>(
            artifacts.active_nodes_per_slot[i]));
    csv.end_row();
  }
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Prints a unified-ish first-difference report; returns true when the
/// texts match.
bool diff_report(const std::string& expected,
                 const std::string& actual) {
  if (expected == actual) return true;
  const auto want = split_lines(expected);
  const auto got = split_lines(actual);
  const std::size_t n = std::max(want.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* w = i < want.size() ? &want[i] : nullptr;
    const std::string* g = i < got.size() ? &got[i] : nullptr;
    if (w && g && *w == *g) continue;
    std::cerr << "  first difference at line " << (i + 1) << ":\n"
              << "    golden: " << (w ? *w : "<missing>") << "\n"
              << "    actual: " << (g ? *g : "<missing>") << "\n";
    break;
  }
  std::cerr << "  (" << want.size() << " golden lines, " << got.size()
            << " actual lines; regenerate with gm_golden --update "
               "after intentional changes)\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "tests/golden";
  std::string scenarios_dir = "configs/scenarios";
  std::string filter;
  bool update = false;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update") {
      update = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      scenarios_dir = arg.substr(12);
    } else if (arg.rfind("--case=", 0) == 0) {
      filter = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gm_golden [--dir=PATH] [--scenarios=PATH] "
                   "[--case=SUBSTR] [--list] [--update]\n";
      return 0;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }

  auto cases = golden_cases();
  for (auto& c : scenario_cases(scenarios_dir))
    cases.push_back(std::move(c));
  if (list) {
    for (const auto& c : cases) std::cout << c.name << "\n";
    return 0;
  }

  int mismatches = 0;
  int audit_failures = 0;
  int ran = 0;
  try {
    if (update) std::filesystem::create_directories(dir);
    for (const auto& c : cases) {
      if (!filter.empty() && c.name.find(filter) == std::string::npos)
        continue;
      ++ran;
      const gm::core::ExperimentConfig config = build_config(c);
      gm::core::SimulationEngine engine(config);
      const gm::core::RunArtifacts artifacts = engine.run();

      // The corpus is only trustworthy if the run it snapshots is
      // internally consistent — audit before writing or comparing.
      const gm::audit::AuditReport audit =
          gm::audit::audit_run(engine, artifacts);
      const gm::audit::RoundTripResult round_trip =
          gm::audit::config_roundtrip(config);
      if (!audit.passed() || !round_trip.fixed_point) {
        ++audit_failures;
        std::cerr << "AUDIT " << c.name << "\n";
        audit.print(std::cerr);
        for (const auto& m : round_trip.mismatches)
          std::cerr << "  config round-trip: " << m << "\n";
        continue;
      }

      const std::string actual = render(c, config, artifacts);
      const std::string path = dir + "/" + c.name + ".txt";
      if (update) {
        std::ofstream out(path, std::ios::binary);
        if (!out) {
          std::cerr << "error: cannot write " << path << "\n";
          return 2;
        }
        out << actual;
        std::cout << "wrote " << path << "\n";
        continue;
      }
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        ++mismatches;
        std::cerr << "MISSING " << path
                  << " (generate with gm_golden --update)\n";
        continue;
      }
      std::ostringstream expected;
      expected << in.rdbuf();
      if (diff_report(expected.str(), actual)) {
        std::cout << "ok " << c.name << "\n";
      } else {
        ++mismatches;
        std::cerr << "FAIL " << c.name << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (ran == 0) {
    std::cerr << "error: no case matches --case=" << filter << "\n";
    return 2;
  }
  if (audit_failures > 0) return 4;
  if (mismatches > 0) return 3;
  if (!update)
    std::cout << ran << " golden case(s) green\n";
  return 0;
}
