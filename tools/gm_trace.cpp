// gm_trace — summarize a structured JSONL trace written by
// greenmatch_sim/greenmatch_sweep `--trace=FILE`.
//
//   gm_trace <trace.jsonl> [--top=N] [--slots] [--check]
//
// Prints:
//   - run overview (records, slots, horizon, energy totals, and the
//     residual of the ledger conservation identity as a sanity check);
//   - per-day energy balance table (per-slot with --slots);
//   - event counts by kind;
//   - decision counts by action/reason (runs traced with --provenance);
//   - top-N phases by total time with p50/p95/p99 (requires --profile).
//
// Forward compatibility: a malformed line or an unknown record kind is
// warned about on stderr and skipped — never fatal — so this
// summarizer keeps working on traces from newer simulators. `--check`
// turns strict: it validates the schema (parseable lines, known kinds,
// required slot fields) and exits nonzero on any violation; CI runs it
// against every smoke trace.
//
// The schema is documented in docs/observability.md; the parser is the
// bundled flat-JSON reader, so this tool works on any trace the
// simulator can produce, with no third-party dependencies.

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using gm::obs::FlatRecord;
using gm::obs::record_num;
using gm::obs::record_str;

/// Record kinds this summarizer understands (docs/observability.md).
/// Anything else is counted as a generic event with a one-time
/// warning, so older gm_trace builds keep working on newer traces.
const std::set<std::string>& known_kinds() {
  static const std::set<std::string> kinds = {
      "slot",      "phase",         "run_end",   "audit",
      "decision",  "task_admit",    "task_complete", "task_miss",
      "task_reject", "node_fail",   "node_repair",   "transfer"};
  return kinds;
}

struct EnergyBucket {
  std::int64_t slots = 0;
  double demand_j = 0.0;
  double green_supply_j = 0.0;
  double green_direct_j = 0.0;
  double battery_in_j = 0.0;
  double battery_out_j = 0.0;
  double brown_j = 0.0;
  double curtailed_j = 0.0;
  std::int64_t forced_wakeups = 0;
  double active_node_slots = 0.0;

  void add(const FlatRecord& r) {
    ++slots;
    demand_j += record_num(r, "demand_j");
    green_supply_j += record_num(r, "green_supply_j");
    green_direct_j += record_num(r, "green_direct_j");
    battery_in_j += record_num(r, "battery_in_j");
    battery_out_j += record_num(r, "battery_out_j");
    brown_j += record_num(r, "brown_j");
    curtailed_j += record_num(r, "curtailed_j");
    forced_wakeups +=
        static_cast<std::int64_t>(record_num(r, "forced_wakeups"));
    active_node_slots += record_num(r, "active_nodes");
  }
};

void print_energy_table(
    const std::vector<std::pair<std::string, EnergyBucket>>& rows,
    const std::string& label, std::ostream& out) {
  gm::TextTable table({label, "demand kWh", "green kWh", "direct kWh",
                       "batt in", "batt out", "brown kWh", "curtailed",
                       "nodes", "wakeups"});
  for (const auto& [name, b] : rows) {
    const double mean_nodes =
        b.slots > 0 ? b.active_node_slots / static_cast<double>(b.slots)
                    : 0.0;
    table.add_row({name, gm::TextTable::num(gm::j_to_kwh(b.demand_j)),
                   gm::TextTable::num(gm::j_to_kwh(b.green_supply_j)),
                   gm::TextTable::num(gm::j_to_kwh(b.green_direct_j)),
                   gm::TextTable::num(gm::j_to_kwh(b.battery_in_j)),
                   gm::TextTable::num(gm::j_to_kwh(b.battery_out_j)),
                   gm::TextTable::num(gm::j_to_kwh(b.brown_j)),
                   gm::TextTable::num(gm::j_to_kwh(b.curtailed_j)),
                   gm::TextTable::num(mean_nodes, 1),
                   std::to_string(b.forced_wakeups)});
  }
  table.print(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int top = 10;
  bool per_slot = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gm_trace <trace.jsonl> [--top=N] [--slots] "
                   "[--check]\n";
      return 0;
    }
    if (arg == "--slots") {
      per_slot = true;
      continue;
    }
    if (arg == "--check") {
      check = true;
      continue;
    }
    if (arg.rfind("--top=", 0) == 0) {
      top = std::stoi(arg.substr(std::strlen("--top=")));
      continue;
    }
    if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: gm_trace <trace.jsonl> [--top=N] [--slots] "
                 "[--check]\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open trace file: " << path << '\n';
    return 1;
  }

  try {
    EnergyBucket total;
    std::map<std::int64_t, EnergyBucket> days;
    std::vector<std::pair<std::string, EnergyBucket>> slot_rows;
    std::map<std::string, std::uint64_t> event_counts;
    std::map<std::string, std::uint64_t> decision_actions;
    std::map<std::string, std::uint64_t> decision_reasons;
    std::vector<FlatRecord> phases;
    std::set<std::string> warned_kinds;
    double horizon_s = 0.0;
    double conservation_residual_j = 0.0;
    std::uint64_t records = 0;
    std::uint64_t skipped = 0;
    std::uint64_t violations = 0;

    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      // Warn-and-skip per line: one malformed or foreign record must
      // not take down the whole summary (older summarizer, newer
      // trace). --check instead counts it as a schema violation.
      FlatRecord r;
      try {
        r = gm::obs::parse_flat_json(line);
      } catch (const std::exception& e) {
        std::cerr << "warning: line " << line_no << ": " << e.what()
                  << " — skipped\n";
        ++skipped;
        ++violations;
        continue;
      }
      ++records;
      const std::string kind = record_str(r, "kind");
      if (kind.empty()) {
        std::cerr << "warning: line " << line_no
                  << ": record has no kind — skipped\n";
        ++skipped;
        ++violations;
        continue;
      }
      if (kind == "slot") {
        if (check &&
            (!r.count("start_s") || !r.count("end_s") ||
             !r.count("demand_j"))) {
          std::cerr << "warning: line " << line_no
                    << ": slot record missing required fields\n";
          ++violations;
        }
        total.add(r);
        const double start = record_num(r, "start_s");
        days[static_cast<std::int64_t>(start / 86400.0)].add(r);
        if (per_slot) {
          EnergyBucket one;
          one.add(r);
          slot_rows.emplace_back(record_str(r, "slot"), one);
        }
        horizon_s = std::max(horizon_s, record_num(r, "end_s"));
        // demand = green_direct + battery_out + brown (ledger identity)
        conservation_residual_j += std::fabs(
            record_num(r, "demand_j") -
            (record_num(r, "green_direct_j") +
             record_num(r, "battery_out_j") + record_num(r, "brown_j")));
      } else if (kind == "phase") {
        phases.push_back(r);
      } else if (kind == "decision") {
        const std::string action = record_str(r, "action", "?");
        ++decision_actions[action];
        ++decision_reasons[action + " / " +
                           record_str(r, "reason", "?")];
      } else if (kind != "run_end") {
        if (!known_kinds().count(kind) &&
            warned_kinds.insert(kind).second) {
          std::cerr << "warning: unknown record kind '" << kind
                    << "' — counted as event\n";
          if (check) ++violations;
        }
        ++event_counts[kind];
      }
    }

    if (check) {
      std::cout << "check: " << records << " records, " << skipped
                << " skipped, " << violations << " violations\n";
      return violations > 0 ? 3 : 0;
    }

    std::cout << "trace: " << path << '\n'
              << "records: " << records << "  slots: " << total.slots
              << "  horizon: "
              << gm::TextTable::num(horizon_s / 86400.0, 2) << " days\n"
              << "demand: "
              << gm::TextTable::num(gm::j_to_kwh(total.demand_j))
              << " kWh  brown: "
              << gm::TextTable::num(gm::j_to_kwh(total.brown_j))
              << " kWh  curtailed: "
              << gm::TextTable::num(gm::j_to_kwh(total.curtailed_j))
              << " kWh\n"
              << "conservation residual: "
              << gm::TextTable::num(
                     gm::j_to_kwh(conservation_residual_j), 6)
              << " kWh\n\n";

    if (per_slot) {
      print_energy_table(slot_rows, "slot", std::cout);
    } else {
      std::vector<std::pair<std::string, EnergyBucket>> day_rows;
      for (const auto& [day, bucket] : days)
        day_rows.emplace_back("day " + std::to_string(day), bucket);
      print_energy_table(day_rows, "period", std::cout);
    }

    if (!event_counts.empty()) {
      std::cout << '\n';
      gm::TextTable events({"event", "count"});
      for (const auto& [kind, count] : event_counts)
        events.add_row({kind, std::to_string(count)});
      events.print(std::cout);
    }

    if (!decision_actions.empty()) {
      std::cout << "\ndecisions (action / reason):\n";
      gm::TextTable table({"action / reason", "count"});
      for (const auto& [action, count] : decision_actions)
        table.add_row({action, std::to_string(count)});
      for (const auto& [reason, count] : decision_reasons)
        table.add_row({"  " + reason, std::to_string(count)});
      table.print(std::cout);
    }

    if (!phases.empty()) {
      std::cout << "\ntop phases by total time:\n";
      // p50/p95/p99 appeared with the v2 recorder; older traces just
      // show zeros (record_num falls back to 0 on missing keys).
      gm::TextTable table({"phase", "calls", "total ms", "mean us",
                           "p50 us", "p95 us", "p99 us", "max us"});
      int shown = 0;
      for (const auto& r : phases) {
        if (shown++ >= top) break;
        table.add_row(
            {record_str(r, "phase"),
             gm::TextTable::num(record_num(r, "calls"), 0),
             gm::TextTable::num(record_num(r, "total_ms")),
             gm::TextTable::num(record_num(r, "mean_us")),
             gm::TextTable::num(record_num(r, "p50_us")),
             gm::TextTable::num(record_num(r, "p95_us")),
             gm::TextTable::num(record_num(r, "p99_us")),
             gm::TextTable::num(record_num(r, "max_us"))});
      }
      table.print(std::cout);
    }
    if (skipped > 0)
      std::cerr << "note: " << skipped << " unreadable line(s) skipped\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
