// greenmatch_sim — the experiment-runner CLI.
//
//   greenmatch_sim [config-file] [key=value ...] [--slots]
//                  [--audit[=FILE]] [--trace=FILE] [--metrics=FILE]
//                  [--manifest=FILE] [--profile] [--help]
//
// Runs one simulation from canonical defaults + the optional config
// file + any key=value overrides (same key space as the file format),
// then prints the run summary. `--slots` additionally emits the
// per-slot energy ledger as CSV on stdout.
//
// Correctness (docs/correctness.md):
//   --audit         runs the gm::audit conservation checks and the
//                   config round-trip check after the simulation; the
//                   verdict table goes to stderr (stdout stays clean
//                   for --slots pipelines) and any violation fails the
//                   run with exit code 4. --audit=FILE additionally
//                   appends one JSONL record per check to FILE.
//
// Observability (docs/observability.md):
//   --trace=FILE    structured JSONL trace (one record per slot plus
//                   discrete events); a run manifest is written next
//                   to it as FILE stem + .manifest.json
//   --metrics=FILE  metrics registry export; .csv selects CSV,
//                   anything else Prometheus text exposition
//   --manifest=FILE explicit manifest path (overrides derivation)
//   --profile       GM_OBS_SCOPE phase timing; prints a table with
//                   p50/p95/p99 columns
//   --provenance    per-task decision records (kind=decision in the
//                   trace; query them with tools/gm_explain)
//   --chrome-trace=FILE
//                   Chrome trace-event JSON, loadable in Perfetto
//                   (ui.perfetto.dev) or chrome://tracing
//
// When any observability flag is active, a planner telemetry stanza
// (warm starts, solver work) is printed after the summary for
// GreenMatch runs. It is withheld from plain runs so the summary
// stays byte-identical to the golden corpus.
//
// Examples:
//   greenmatch_sim policy.kind=asap battery.kwh=40
//   greenmatch_sim experiment.conf sim.fidelity=event --slots
//   greenmatch_sim configs/canonical_week.conf --trace=run.jsonl \
//       --metrics=run.prom --profile --provenance \
//       --chrome-trace=run.trace.json

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "audit/audit.hpp"
#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "obs/recorder.hpp"
#include "util/csv.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: greenmatch_sim [config-file] [key=value ...] [--slots]\n"
      "                      [--audit[=FILE]] [--trace=FILE]\n"
      "                      [--metrics=FILE] [--manifest=FILE]\n"
      "                      [--profile] [--provenance]\n"
      "                      [--chrome-trace=FILE]\n\n"
      "Runs one GreenMatch simulation. Configuration keys:\n\n"
      << gm::core::config_keys_help();
}

void print_slot_csv(const gm::core::RunArtifacts& artifacts) {
  gm::CsvWriter csv(std::cout);
  csv.field("slot").field("start_s").field("demand_kwh")
      .field("green_supply_kwh").field("green_direct_kwh")
      .field("battery_in_kwh").field("battery_out_kwh")
      .field("brown_kwh").field("curtailed_kwh")
      .field("battery_soc_kwh").field("active_nodes");
  csv.end_row();
  const auto& slots = artifacts.ledger.slots();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto& s = slots[i];
    csv.field(s.slot)
        .field(s.start)
        .field(gm::j_to_kwh(s.demand_j))
        .field(gm::j_to_kwh(s.green_supply_j))
        .field(gm::j_to_kwh(s.green_direct_j))
        .field(gm::j_to_kwh(s.battery_charge_drawn_j))
        .field(gm::j_to_kwh(s.battery_discharged_j))
        .field(gm::j_to_kwh(s.brown_j))
        .field(gm::j_to_kwh(s.curtailed_j))
        .field(gm::j_to_kwh(s.battery_stored_end_j))
        .field(static_cast<std::int64_t>(
            artifacts.active_nodes_per_slot[i]));
    csv.end_row();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_slots = false;
  bool audit = false;
  std::string audit_jsonl_path;
  std::string config_path;
  gm::KeyValueConfig overrides;
  gm::obs::RecorderConfig obs_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--slots") {
      emit_slots = true;
      continue;
    }
    if (arg == "--audit") {
      audit = true;
      continue;
    }
    if (arg.rfind("--audit=", 0) == 0) {
      audit = true;
      audit_jsonl_path = arg.substr(std::strlen("--audit="));
      continue;
    }
    if (arg == "--profile") {
      obs_config.profile = true;
      continue;
    }
    if (arg == "--provenance") {
      obs_config.provenance = true;
      continue;
    }
    if (arg.rfind("--chrome-trace=", 0) == 0) {
      obs_config.chrome_trace_path =
          arg.substr(std::strlen("--chrome-trace="));
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      obs_config.trace_path = arg.substr(std::strlen("--trace="));
      continue;
    }
    if (arg.rfind("--metrics=", 0) == 0) {
      obs_config.metrics_path = arg.substr(std::strlen("--metrics="));
      continue;
    }
    if (arg.rfind("--manifest=", 0) == 0) {
      obs_config.manifest_path = arg.substr(std::strlen("--manifest="));
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) != 0) {
      overrides.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (eq == std::string::npos && config_path.empty()) {
      config_path = arg;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }

  try {
    gm::core::ExperimentConfig config =
        gm::core::ExperimentConfig::canonical();
    if (!config_path.empty())
      gm::core::apply_config(
          config, gm::KeyValueConfig::load_file(config_path));
    gm::core::apply_config(config, overrides);

    std::shared_ptr<gm::obs::Recorder> recorder;
    if (obs_config.any_enabled())
      recorder = std::make_shared<gm::obs::Recorder>(obs_config);

    gm::core::SimulationEngine engine(config, recorder);
    const gm::core::RunArtifacts artifacts = engine.run();
    artifacts.result.print_summary(std::cout);

    // Planner telemetry stanza — only with observability enabled, so
    // a plain run's stdout stays byte-identical to the golden corpus.
    // Routed to stderr under --slots to keep the CSV pipeline clean.
    if (recorder) {
      const auto& s = artifacts.result.scheduler;
      if (s.solver_solves > 0 || s.warm_accepts + s.warm_rejects > 0) {
        std::ostream& out = emit_slots ? std::cerr : std::cout;
        out << "\nplanner telemetry:\n"
            << "  solves: " << s.solver_solves
            << "  cache hits: " << s.plan_cache_hits
            << "  warm accepts: " << s.warm_accepts
            << "  warm rejects: " << s.warm_rejects << '\n'
            << "  dijkstra runs: " << s.solver_dijkstra_runs
            << "  pops: " << s.solver_dijkstra_pops
            << "  relaxations: " << s.solver_relaxations
            << "  augmenting paths: " << s.solver_augmenting_paths
            << '\n'
            << "  arena bytes (peak): " << s.solver_arena_bytes_peak
            << '\n';
        // Cost-scaling line only when that solver actually ran — the
        // default SSP stanza keeps its pre-PR 8 shape.
        if (s.solver_incremental_accepts + s.solver_incremental_rebuilds >
            0) {
          out << "  cost-scaling phases: " << s.solver_cs_phases
              << "  pushes: " << s.solver_cs_pushes
              << "  relabels: " << s.solver_cs_relabels
              << "  price refinements: " << s.solver_cs_price_refinements
              << '\n'
              << "  incremental accepts: "
              << s.solver_incremental_accepts
              << "  rebuilds: " << s.solver_incremental_rebuilds << '\n';
        }
      }
      // Admission fast-path stanza for open-system runs — gated on the
      // recorder like the planner stanza, so plain summaries stay
      // golden-identical (counts are in the summary's admission line;
      // wall-clock latencies only ever appear here and in metrics).
      const auto& q = artifacts.result.qos;
      if (q.admission_decisions > 0) {
        std::ostream& out = emit_slots ? std::cerr : std::cout;
        out << "\nadmission telemetry:\n"
            << "  decisions: " << q.admission_decisions
            << "  admitted: " << q.arrivals_admitted
            << "  deferrals: " << q.admission_deferrals
            << "  rejected: " << q.arrivals_rejected
            << "  overflow: " << q.arrivals_overflow_admits << '\n'
            << "  decision latency: p50 "
            << s.admission_decision_p50_us << " us, p99 "
            << s.admission_decision_p99_us << " us, total "
            << s.admission_decision_wall_ms << " ms\n";
      }
    }

    if (emit_slots) {
      std::cout << '\n';
      print_slot_csv(artifacts);
    }

    bool audit_ok = true;
    if (audit) {
      const gm::audit::AuditReport report =
          gm::audit::audit_run(engine, artifacts);
      const gm::audit::RoundTripResult round_trip =
          gm::audit::config_roundtrip(config);
      report.print(std::cerr);
      if (!round_trip.fixed_point) {
        std::cerr << "audit: config round-trip is not a fixed point:\n";
        for (const auto& m : round_trip.mismatches)
          std::cerr << "  " << m << '\n';
      }
      if (!audit_jsonl_path.empty())
        report.write_jsonl(audit_jsonl_path,
                           artifacts.result.scheduler.policy_name);
      if (recorder) report.emit(*recorder);
      audit_ok = report.passed() && round_trip.fixed_point;
    }

    if (recorder) {
      recorder->finish();
      if (recorder->config().profile) {
        std::cout << '\n';
        recorder->profiler().print_table(std::cout);
      }
    }
    return audit_ok ? 0 : 4;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
