// greenmatch_sim — the experiment-runner CLI.
//
//   greenmatch_sim [config-file] [key=value ...] [--slots]
//                  [--trace=FILE] [--metrics=FILE] [--manifest=FILE]
//                  [--profile] [--help]
//
// Runs one simulation from canonical defaults + the optional config
// file + any key=value overrides (same key space as the file format),
// then prints the run summary. `--slots` additionally emits the
// per-slot energy ledger as CSV on stdout.
//
// Observability (docs/observability.md):
//   --trace=FILE    structured JSONL trace (one record per slot plus
//                   discrete events); a run manifest is written next
//                   to it as FILE stem + .manifest.json
//   --metrics=FILE  metrics registry export; .csv selects CSV,
//                   anything else Prometheus text exposition
//   --manifest=FILE explicit manifest path (overrides derivation)
//   --profile       GM_OBS_SCOPE phase timing; prints a table
//
// Examples:
//   greenmatch_sim policy.kind=asap battery.kwh=40
//   greenmatch_sim experiment.conf sim.fidelity=event --slots
//   greenmatch_sim configs/canonical_week.conf --trace=run.jsonl \
//       --metrics=run.prom --profile

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "obs/recorder.hpp"
#include "util/csv.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: greenmatch_sim [config-file] [key=value ...] [--slots]\n"
      "                      [--trace=FILE] [--metrics=FILE]\n"
      "                      [--manifest=FILE] [--profile]\n\n"
      "Runs one GreenMatch simulation. Configuration keys:\n\n"
      << gm::core::config_keys_help();
}

void print_slot_csv(const gm::core::RunArtifacts& artifacts) {
  gm::CsvWriter csv(std::cout);
  csv.field("slot").field("start_s").field("demand_kwh")
      .field("green_supply_kwh").field("green_direct_kwh")
      .field("battery_in_kwh").field("battery_out_kwh")
      .field("brown_kwh").field("curtailed_kwh")
      .field("battery_soc_kwh").field("active_nodes");
  csv.end_row();
  const auto& slots = artifacts.ledger.slots();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto& s = slots[i];
    csv.field(s.slot)
        .field(s.start)
        .field(gm::j_to_kwh(s.demand_j))
        .field(gm::j_to_kwh(s.green_supply_j))
        .field(gm::j_to_kwh(s.green_direct_j))
        .field(gm::j_to_kwh(s.battery_charge_drawn_j))
        .field(gm::j_to_kwh(s.battery_discharged_j))
        .field(gm::j_to_kwh(s.brown_j))
        .field(gm::j_to_kwh(s.curtailed_j))
        .field(gm::j_to_kwh(s.battery_stored_end_j))
        .field(static_cast<std::int64_t>(
            artifacts.active_nodes_per_slot[i]));
    csv.end_row();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_slots = false;
  std::string config_path;
  gm::KeyValueConfig overrides;
  gm::obs::RecorderConfig obs_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--slots") {
      emit_slots = true;
      continue;
    }
    if (arg == "--profile") {
      obs_config.profile = true;
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      obs_config.trace_path = arg.substr(std::strlen("--trace="));
      continue;
    }
    if (arg.rfind("--metrics=", 0) == 0) {
      obs_config.metrics_path = arg.substr(std::strlen("--metrics="));
      continue;
    }
    if (arg.rfind("--manifest=", 0) == 0) {
      obs_config.manifest_path = arg.substr(std::strlen("--manifest="));
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) != 0) {
      overrides.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (eq == std::string::npos && config_path.empty()) {
      config_path = arg;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }

  try {
    gm::core::ExperimentConfig config =
        gm::core::ExperimentConfig::canonical();
    if (!config_path.empty())
      gm::core::apply_config(
          config, gm::KeyValueConfig::load_file(config_path));
    gm::core::apply_config(config, overrides);

    std::shared_ptr<gm::obs::Recorder> recorder;
    if (obs_config.any_enabled())
      recorder = std::make_shared<gm::obs::Recorder>(obs_config);

    const gm::core::RunArtifacts artifacts =
        gm::core::run_experiment(config, recorder);
    artifacts.result.print_summary(std::cout);
    if (emit_slots) {
      std::cout << '\n';
      print_slot_csv(artifacts);
    }
    if (recorder) {
      recorder->finish();
      if (recorder->config().profile) {
        std::cout << '\n';
        recorder->profiler().print_table(std::cout);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
