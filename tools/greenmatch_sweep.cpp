// greenmatch_sweep — one-dimensional parameter sweeps from the CLI.
//
//   greenmatch_sweep <key> <v1,v2,...> [config-file] [key=value ...]
//
// Runs one simulation per value of <key> (same key space as the config
// files) and prints a comparison table plus csv: lines. Example:
//
//   greenmatch_sweep battery.kwh 0,20,40,80 policy.kind=greenmatch
//   greenmatch_sweep policy.kind asap,opportunistic,greenmatch

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> split_values(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cout << "usage: greenmatch_sweep <key> <v1,v2,...> "
                 "[config-file] [key=value ...]\n\nKeys:\n"
              << gm::core::config_keys_help();
    return argc == 1 ? 0 : 2;
  }
  const std::string sweep_key = argv[1];
  const auto values = split_values(argv[2]);
  if (values.empty()) {
    std::cerr << "error: no sweep values\n";
    return 2;
  }

  std::string config_path;
  gm::KeyValueConfig overrides;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq != std::string::npos)
      overrides.set(arg.substr(0, eq), arg.substr(eq + 1));
    else if (config_path.empty())
      config_path = arg;
    else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }

  try {
    gm::TextTable table({sweep_key, "brown kWh", "green util",
                         "curtailed kWh", "misses", "mean nodes"});
    for (const auto& value : values) {
      gm::core::ExperimentConfig config =
          gm::core::ExperimentConfig::canonical();
      if (!config_path.empty())
        gm::core::apply_config(
            config, gm::KeyValueConfig::load_file(config_path));
      gm::core::apply_config(config, overrides);
      gm::KeyValueConfig point;
      point.set(sweep_key, value);
      gm::core::apply_config(config, point);

      const auto r = gm::core::run_experiment(config).result;
      table.add_row({value, gm::TextTable::num(r.brown_kwh()),
                     gm::TextTable::percent(r.energy.green_utilization()),
                     gm::TextTable::num(r.curtailed_kwh()),
                     std::to_string(r.qos.deadline_misses),
                     gm::TextTable::num(r.scheduler.mean_active_nodes,
                                        1)});
      std::cout << "csv:" << value << ',' << r.brown_kwh() << ','
                << r.energy.green_utilization() << '\n';
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
