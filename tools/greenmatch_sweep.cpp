// greenmatch_sweep — one-dimensional parameter sweeps from the CLI.
//
//   greenmatch_sweep <key> <v1,v2,...> [config-file] [key=value ...]
//                    [--trace=FILE] [--metrics=FILE] [--profile]
//
// Runs one simulation per value of <key> (same key space as the config
// files) and prints a comparison table plus csv: lines. Example:
//
//   greenmatch_sweep battery.kwh 0,20,40,80 policy.kind=greenmatch
//   greenmatch_sweep policy.kind asap,opportunistic,greenmatch
//
// Observability: --trace / --metrics name *base* files; each sweep
// point writes to the base with the point's value spliced in before
// the extension (run.jsonl -> run.asap.jsonl). --profile prints one
// phase-timing table per point.

#include <cctype>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "obs/recorder.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> split_values(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) out.push_back(item);
  return out;
}

/// run.jsonl + "asap" -> run.asap.jsonl (value sanitized for paths).
std::string per_value_path(const std::string& base,
                           const std::string& value) {
  if (base.empty()) return base;
  std::string tag;
  for (char c : value)
    tag += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '.')
               ? c
               : '_';
  const auto dot = base.rfind('.');
  const auto slash = base.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + "." + tag;
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cout << "usage: greenmatch_sweep <key> <v1,v2,...> "
                 "[config-file] [key=value ...]\n\nKeys:\n"
              << gm::core::config_keys_help();
    return argc == 1 ? 0 : 2;
  }
  const std::string sweep_key = argv[1];
  const auto values = split_values(argv[2]);
  if (values.empty()) {
    std::cerr << "error: no sweep values\n";
    return 2;
  }

  std::string config_path;
  gm::KeyValueConfig overrides;
  std::string trace_base, metrics_base;
  bool profile = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      profile = true;
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      trace_base = arg.substr(std::strlen("--trace="));
      continue;
    }
    if (arg.rfind("--metrics=", 0) == 0) {
      metrics_base = arg.substr(std::strlen("--metrics="));
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) != 0)
      overrides.set(arg.substr(0, eq), arg.substr(eq + 1));
    else if (eq == std::string::npos && config_path.empty())
      config_path = arg;
    else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }

  try {
    gm::TextTable table({sweep_key, "brown kWh", "green util",
                         "curtailed kWh", "misses", "mean nodes"});
    for (const auto& value : values) {
      gm::core::ExperimentConfig config =
          gm::core::ExperimentConfig::canonical();
      if (!config_path.empty())
        gm::core::apply_config(
            config, gm::KeyValueConfig::load_file(config_path));
      gm::core::apply_config(config, overrides);
      gm::KeyValueConfig point;
      point.set(sweep_key, value);
      gm::core::apply_config(config, point);

      std::shared_ptr<gm::obs::Recorder> recorder;
      gm::obs::RecorderConfig obs_config;
      obs_config.trace_path = per_value_path(trace_base, value);
      obs_config.metrics_path = per_value_path(metrics_base, value);
      obs_config.profile = profile;
      if (obs_config.any_enabled())
        recorder = std::make_shared<gm::obs::Recorder>(obs_config);

      const auto r = gm::core::run_experiment(config, recorder).result;
      table.add_row({value, gm::TextTable::num(r.brown_kwh()),
                     gm::TextTable::percent(r.energy.green_utilization()),
                     gm::TextTable::num(r.curtailed_kwh()),
                     std::to_string(r.qos.deadline_misses),
                     gm::TextTable::num(r.scheduler.mean_active_nodes,
                                        1)});
      std::cout << "csv:" << value << ',' << r.brown_kwh() << ','
                << r.energy.green_utilization() << '\n';
      if (recorder) {
        recorder->finish();
        if (profile) {
          std::cout << "\nphases for " << sweep_key << '=' << value
                    << ":\n";
          recorder->profiler().print_table(std::cout);
        }
      }
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
