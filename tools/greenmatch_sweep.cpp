// greenmatch_sweep — one-dimensional parameter sweeps from the CLI.
//
//   greenmatch_sweep <key> <v1,v2,...> [config-file] [key=value ...]
//                    [--jobs=N] [--trace=FILE] [--metrics=FILE]
//                    [--profile]
//
// Runs one simulation per value of <key> (same key space as the config
// files) and prints a comparison table plus csv: lines. Example:
//
//   greenmatch_sweep battery.kwh 0,20,40,80 policy.kind=greenmatch
//   greenmatch_sweep policy.kind asap,opportunistic,greenmatch
//
// Points run in parallel on a gm::ThreadPool — --jobs=N picks the
// worker count (default: all hardware threads; --jobs=1 is serial).
// Results are collected by index, so the table and csv: output are
// byte-identical whatever the job count.
//
// Observability: --trace / --metrics / --chrome-trace name *base*
// files; each sweep point writes to the base with its index and value
// spliced in before the extension (run.jsonl -> run.0-asap.jsonl).
// The index keeps distinct points from colliding after value
// sanitization. --profile prints one phase-timing table per point;
// --provenance adds per-task decision records to each point's trace.
//
// Correctness: --audit runs the gm::audit conservation checks on every
// point (on the worker thread, via the sweep post_run hook); failures
// are reported to stderr after the table and fail the sweep with exit
// code 4. --audit=FILE additionally appends the per-point JSONL check
// records to FILE. See docs/correctness.md.

#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "core/config_io.hpp"
#include "core/engine.hpp"
#include "core/sweep.hpp"

namespace {

/// Splits "a,b,c" keeping empty items so they can be rejected: a
/// trailing comma ("0,20,") or interior empty ("0,,20") is operator
/// error, and silently dropping or passing it through would run the
/// wrong experiment.
std::vector<std::string> split_values(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto comma = csv.find(',', start);
    out.push_back(csv.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool parse_jobs(const std::string& text, std::size_t& jobs) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > 4096) return false;
  }
  if (value == 0) return false;
  jobs = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cout << "usage: greenmatch_sweep <key> <v1,v2,...> "
                 "[config-file] [key=value ...] [--jobs=N]\n"
                 "                      [--trace=FILE] [--metrics=FILE] "
                 "[--profile] [--audit[=FILE]]\n"
                 "                      [--chrome-trace=FILE] "
                 "[--provenance]\n\nKeys:\n"
              << gm::core::config_keys_help();
    return argc == 1 ? 0 : 2;
  }
  gm::core::SweepSpec spec;
  spec.key = argv[1];
  spec.values = split_values(argv[2]);
  for (const auto& value : spec.values) {
    if (value.empty()) {
      std::cerr << "error: empty sweep value in '" << argv[2] << "'\n";
      return 2;
    }
  }

  std::string config_path;
  bool audit = false;
  std::string audit_jsonl_path;
  gm::KeyValueConfig overrides;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      spec.profile = true;
      continue;
    }
    if (arg == "--audit") {
      audit = true;
      continue;
    }
    if (arg.rfind("--audit=", 0) == 0) {
      audit = true;
      audit_jsonl_path = arg.substr(std::strlen("--audit="));
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_jobs(arg.substr(std::strlen("--jobs=")), spec.jobs)) {
        std::cerr << "error: --jobs expects a positive integer, got '"
                  << arg.substr(std::strlen("--jobs=")) << "'\n";
        return 2;
      }
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      spec.trace_base = arg.substr(std::strlen("--trace="));
      continue;
    }
    if (arg.rfind("--metrics=", 0) == 0) {
      spec.metrics_base = arg.substr(std::strlen("--metrics="));
      continue;
    }
    if (arg.rfind("--chrome-trace=", 0) == 0) {
      spec.chrome_base = arg.substr(std::strlen("--chrome-trace="));
      continue;
    }
    if (arg == "--provenance") {
      spec.provenance = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos && arg.rfind("--", 0) != 0)
      overrides.set(arg.substr(0, eq), arg.substr(eq + 1));
    else if (eq == std::string::npos && config_path.empty())
      config_path = arg;
    else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }

  try {
    spec.base = gm::core::ExperimentConfig::canonical();
    if (!config_path.empty())
      gm::core::apply_config(
          spec.base, gm::KeyValueConfig::load_file(config_path));
    gm::core::apply_config(spec.base, overrides);

    // Per-point audit via the post_run hook: runs on the worker thread
    // while the engine is still alive; the verdict collection (and the
    // shared JSONL file) are guarded because points finish
    // concurrently.
    std::mutex audit_mutex;
    std::vector<std::string> audit_failures;
    if (audit) {
      const std::string key = spec.key;
      spec.post_run = [&, key](std::size_t, const std::string& value,
                               const gm::core::SimulationEngine& engine,
                               const gm::core::RunArtifacts& artifacts) {
        const gm::audit::AuditReport report =
            gm::audit::audit_run(engine, artifacts);
        const gm::audit::RoundTripResult round_trip =
            gm::audit::config_roundtrip(engine.config());
        const std::lock_guard<std::mutex> lock(audit_mutex);
        if (!audit_jsonl_path.empty())
          report.write_jsonl(audit_jsonl_path, key + "=" + value);
        for (const auto& check : report.checks)
          if (!check.passed)
            audit_failures.push_back(key + "=" + value + ": " +
                                     check.name + " (" + check.detail +
                                     ")");
        for (const auto& mismatch : round_trip.mismatches)
          audit_failures.push_back(key + "=" + value +
                                   ": config round-trip " + mismatch);
      };
    }

    const auto points = gm::core::run_sweep(spec);
    gm::core::print_sweep_report(std::cout, spec, points);
    if (audit) {
      if (audit_failures.empty()) {
        std::cerr << "audit: all " << points.size()
                  << " sweep points passed\n";
      } else {
        std::cerr << "audit: " << audit_failures.size()
                  << " failures:\n";
        for (const auto& failure : audit_failures)
          std::cerr << "  " << failure << '\n';
        return 4;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
