#!/usr/bin/env python3
"""Unit tests for gm_bench_diff.py (run under ctest as a stdlib-only
python test — no pytest).

Focus: the join/report behavior, in particular the PR 8 fix for
benchmarks present in only one report. Those used to be dropped from
the output entirely, which made a renamed bench look like a clean diff;
now they are listed in a non-gating "unmatched" section.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import gm_bench_diff  # noqa: E402  (path set up above)


def record(bench, metric, value):
    return {"bench": bench, "metric": metric, "value": value,
            "unit": "ns", "wall_ms": 0, "git_sha": "test"}


class GmBenchDiffTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def write_report(self, name, records):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(records, f)
        return path

    def run_diff(self, argv):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = gm_bench_diff.main(argv)
        return code, out.getvalue()

    # ---- median-row selection --------------------------------------

    def test_median_rows_accepts_all_three_conventions(self):
        rows = gm_bench_diff.median_rows([
            record("BM_A_median", "real_time", 1.0),
            record("BM_B_median/iterations:1", "real_time", 2.0),
            record("BM_C", "plan_ms_pre_pr5_median", 3.0),
            record("BM_D_mean", "real_time", 4.0),      # not a median
            record("BM_E_stddev", "real_time", 5.0),    # not a median
        ])
        self.assertEqual(
            set(rows),
            {("BM_A_median", "real_time"),
             ("BM_B_median/iterations:1", "real_time"),
             ("BM_C", "plan_ms_pre_pr5_median")})

    # ---- matched join ----------------------------------------------

    def test_flags_regression_beyond_threshold(self):
        base = self.write_report("base.json", [
            record("BM_A_median", "real_time", 100.0)])
        cur = self.write_report("cur.json", [
            record("BM_A_median", "real_time", 150.0)])
        code, out = self.run_diff([base, cur])
        self.assertEqual(code, 0)  # report-only by default
        self.assertIn("<-- slower", out)
        self.assertIn("1 compared, 1 beyond", out)

    def test_fail_on_regression_gates(self):
        base = self.write_report("base.json", [
            record("BM_A_median", "real_time", 100.0)])
        cur = self.write_report("cur.json", [
            record("BM_A_median", "real_time", 150.0)])
        code, _ = self.run_diff(["--fail-on-regression", base, cur])
        self.assertEqual(code, 1)

    def test_per_second_metrics_are_higher_is_better(self):
        base = self.write_report("base.json", [
            record("BM_A_median", "items_per_second", 100.0)])
        cur = self.write_report("cur.json", [
            record("BM_A_median", "items_per_second", 150.0)])
        code, out = self.run_diff(["--fail-on-regression", base, cur])
        self.assertEqual(code, 0)
        self.assertIn("<-- faster", out)

    def test_per_s_suffix_metrics_are_higher_is_better(self):
        base = self.write_report("base.json", [
            record("BM_A_median", "admission_tasks_per_s", 1.0e6)])
        cur = self.write_report("cur.json", [
            record("BM_A_median", "admission_tasks_per_s", 2.0e6)])
        code, out = self.run_diff(["--fail-on-regression", base, cur])
        self.assertEqual(code, 0)
        self.assertIn("<-- faster", out)

    def test_per_s_suffix_drop_is_a_regression(self):
        base = self.write_report("base.json", [
            record("BM_A_median", "admission_tasks_per_s", 2.0e6)])
        cur = self.write_report("cur.json", [
            record("BM_A_median", "admission_tasks_per_s", 1.0e6)])
        code, out = self.run_diff(["--fail-on-regression", base, cur])
        self.assertEqual(code, 1)
        self.assertIn("<-- slower", out)

    def test_per_s_inside_name_is_not_throughput(self):
        # Only the *suffix* flips direction: a duration metric that
        # merely contains "per_s" elsewhere stays lower-is-better.
        base = self.write_report("base.json", [
            record("BM_A_median", "plan_ms_per_slot", 10.0)])
        cur = self.write_report("cur.json", [
            record("BM_A_median", "plan_ms_per_slot", 20.0)])
        code, out = self.run_diff(["--fail-on-regression", base, cur])
        self.assertEqual(code, 1)
        self.assertIn("<-- slower", out)

    # ---- unmatched section (the PR 8 bugfix) -----------------------

    def test_unmatched_benches_are_reported_not_dropped(self):
        base = self.write_report("base.json", [
            record("BM_Shared_median", "real_time", 100.0),
            record("BM_Renamed_median", "real_time", 7.0)])
        cur = self.write_report("cur.json", [
            record("BM_Shared_median", "real_time", 101.0),
            record("BM_Brand_New_median", "real_time", 9.0)])
        code, out = self.run_diff([base, cur])
        self.assertEqual(code, 0)
        self.assertIn("unmatched (2 median rows in only one report):",
                      out)
        self.assertIn("baseline only: BM_Renamed_median real_time", out)
        self.assertIn("current only:  BM_Brand_New_median real_time",
                      out)

    def test_unmatched_section_is_not_a_gate(self):
        base = self.write_report("base.json", [
            record("BM_Shared_median", "real_time", 100.0),
            record("BM_Gone_median", "real_time", 7.0)])
        cur = self.write_report("cur.json", [
            record("BM_Shared_median", "real_time", 100.0)])
        code, _ = self.run_diff(["--fail-on-regression", base, cur])
        self.assertEqual(code, 0)

    def test_disjoint_reports_list_everything_unmatched(self):
        base = self.write_report("base.json", [
            record("BM_Old_median", "real_time", 1.0)])
        cur = self.write_report("cur.json", [
            record("BM_New_median", "real_time", 2.0)])
        code, out = self.run_diff([base, cur])
        self.assertEqual(code, 0)
        self.assertIn("no common (bench, metric) median rows", out)
        self.assertIn("baseline only: BM_Old_median real_time", out)
        self.assertIn("current only:  BM_New_median real_time", out)

    def test_fully_matched_reports_emit_no_unmatched_section(self):
        base = self.write_report("base.json", [
            record("BM_A_median", "real_time", 100.0)])
        cur = self.write_report("cur.json", [
            record("BM_A_median", "real_time", 100.0)])
        _, out = self.run_diff([base, cur])
        self.assertNotIn("unmatched", out)

    # ---- input formats ---------------------------------------------

    def test_reads_raw_jsonl(self):
        path = os.path.join(self._tmp.name, "report.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write(json.dumps(record("BM_A_median", "real_time", 3.0)))
            f.write("\n")
            f.write(json.dumps(record("BM_A_mean", "real_time", 4.0)))
            f.write("\n")
        rows = gm_bench_diff.median_rows(
            gm_bench_diff.load_records(path))
        self.assertEqual(rows, {("BM_A_median", "real_time"): 3.0})


if __name__ == "__main__":
    unittest.main()
